"""C preprocessor.

Token-based macro expansion with hide sets, conditionals, and includes.
Supports what the paper's code needs: object- and function-like macros
(``va_start``/``va_arg`` from Figure 9 are function-like macros in our safe
libc), ``#include``, ``#if``/``#ifdef`` conditionals with ``defined()``,
``#undef``, ``#error``, ``#pragma`` and stringizing ``#param``.
"""

from __future__ import annotations

import hashlib
import os
from collections import deque

from ..source import SourceLocation
from . import lexer
from .errors import PreprocessorError
from .lexer import IDENT, INT_CONST, PUNCT, STRING, Token


class Macro:
    __slots__ = ("name", "params", "body", "is_function", "is_varargs")

    def __init__(self, name: str, body: list[Token],
                 params: list[str] | None = None, is_varargs: bool = False):
        self.name = name
        self.body = body
        self.params = params
        self.is_function = params is not None
        self.is_varargs = is_varargs


class Preprocessor:
    def __init__(self, include_dirs: list[str] | None = None,
                 defines: dict[str, str] | None = None):
        self.include_dirs = list(include_dirs or [])
        self.macros: dict[str, Macro] = {}
        self.include_depth = 0
        # (absolute path, sha256) for every file pulled in via #include
        # — the compilation cache's invalidation manifest.
        self.included_files: list[tuple[str, str]] = []
        # __STDC__ is always defined; the execution-model macro
        # (__SAFE_SULONG__ or __NATIVE__) is chosen by the driver.
        self.define_from_string("__STDC__", "1")
        for name, value in (defines or {}).items():
            self.define_from_string(name, value)

    # -- public entry points -------------------------------------------------

    def define_from_string(self, name: str, value: str = "1") -> None:
        body = lexer.tokenize(value, f"<define:{name}>")
        self.macros[name] = Macro(name, body)

    def process_file(self, path: str) -> list[Token]:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        return self.process_text(text, path)

    def process_text(self, text: str, filename: str) -> list[Token]:
        tokens = lexer.tokenize(text, filename)
        lines = _split_lines(tokens)
        out: list[Token] = []
        self._process_lines(lines, os.path.dirname(filename), out)
        return out

    # -- driver ---------------------------------------------------------------

    def _process_lines(self, lines: list[list[Token]], cwd: str,
                       out: list[Token]) -> None:
        # Conditional stack entries: [currently_active, any_branch_taken,
        # seen_else].
        stack: list[list[bool]] = []
        pending: list[Token] = []

        def flush() -> None:
            if pending:
                out.extend(self._expand(deque(pending)))
                pending.clear()

        for line in lines:
            if line and line[0].is_punct("#"):
                flush()
                self._directive(line, cwd, out, stack)
            else:
                active = all(entry[0] for entry in stack)
                if active:
                    pending.extend(line)
        flush()
        if stack:
            raise PreprocessorError("unterminated #if", None)

    def _directive(self, line: list[Token], cwd: str, out: list[Token],
                   stack: list[list[bool]]) -> None:
        if len(line) == 1:
            return  # A lone '#' is a null directive.
        directive = line[1]
        name = directive.text
        rest = line[2:]
        active = all(entry[0] for entry in stack)
        parent_active = all(entry[0] for entry in stack[:-1]) if stack else True

        if name == "ifdef" or name == "ifndef":
            if not rest or rest[0].kind != IDENT:
                raise PreprocessorError(f"#{name} expects an identifier",
                                        directive.loc)
            defined = rest[0].text in self.macros
            truth = defined if name == "ifdef" else not defined
            stack.append([active and truth, truth, False])
            return
        if name == "if":
            truth = bool(self._evaluate_condition(rest, directive.loc)) \
                if active else False
            stack.append([active and truth, truth, False])
            return
        if name == "elif":
            if not stack:
                raise PreprocessorError("#elif without #if", directive.loc)
            entry = stack[-1]
            if entry[2]:
                raise PreprocessorError("#elif after #else", directive.loc)
            if entry[1] or not parent_active:
                entry[0] = False
            else:
                truth = bool(self._evaluate_condition(rest, directive.loc))
                entry[0] = truth
                entry[1] = truth
            return
        if name == "else":
            if not stack:
                raise PreprocessorError("#else without #if", directive.loc)
            entry = stack[-1]
            if entry[2]:
                raise PreprocessorError("duplicate #else", directive.loc)
            entry[2] = True
            entry[0] = parent_active and not entry[1]
            entry[1] = True
            return
        if name == "endif":
            if not stack:
                raise PreprocessorError("#endif without #if", directive.loc)
            stack.pop()
            return

        if not active:
            return

        if name == "define":
            self._define(rest, directive.loc)
        elif name == "undef":
            if rest and rest[0].kind == IDENT:
                self.macros.pop(rest[0].text, None)
        elif name == "include":
            self._include(rest, cwd, out, directive.loc)
        elif name == "error":
            message = " ".join(t.text for t in rest)
            raise PreprocessorError(f"#error {message}", directive.loc)
        elif name == "pragma":
            pass  # Ignored (e.g. #pragma once is handled by include guards).
        elif name == "warning":
            pass
        else:
            raise PreprocessorError(f"unknown directive #{name}",
                                    directive.loc)

    # -- #define --------------------------------------------------------------

    def _define(self, rest: list[Token], loc: SourceLocation) -> None:
        if not rest or rest[0].kind != IDENT:
            raise PreprocessorError("#define expects a name", loc)
        name = rest[0].text
        # Function-like only when '(' immediately follows the name.
        if (len(rest) > 1 and rest[1].is_punct("(")
                and not rest[1].space_before):
            params: list[str] = []
            is_varargs = False
            i = 2
            if rest[i].is_punct(")"):
                i += 1
            else:
                while True:
                    if rest[i].is_punct("..."):
                        is_varargs = True
                        i += 1
                    elif rest[i].kind == IDENT:
                        params.append(rest[i].text)
                        i += 1
                    else:
                        raise PreprocessorError(
                            "bad macro parameter list", loc)
                    if rest[i].is_punct(")"):
                        i += 1
                        break
                    if not rest[i].is_punct(","):
                        raise PreprocessorError(
                            "bad macro parameter list", loc)
                    i += 1
            body = rest[i:]
            self.macros[name] = Macro(name, body, params, is_varargs)
        else:
            self.macros[name] = Macro(name, rest[1:])

    # -- #include ---------------------------------------------------------------

    def _include(self, rest: list[Token], cwd: str, out: list[Token],
                 loc: SourceLocation) -> None:
        if rest and rest[0].kind == STRING:
            target = rest[0].value.decode("utf-8")
            search = [cwd, *self.include_dirs]
        elif rest and rest[0].is_punct("<"):
            parts = []
            for token in rest[1:]:
                if token.is_punct(">"):
                    break
                parts.append(token.text)
            target = "".join(parts)
            search = list(self.include_dirs)
        else:
            raise PreprocessorError("malformed #include", loc)
        for directory in search:
            candidate = os.path.join(directory, target)
            if os.path.exists(candidate):
                if self.include_depth > 40:
                    raise PreprocessorError("include depth exceeded", loc)
                self.include_depth += 1
                try:
                    with open(candidate, "r", encoding="utf-8") as handle:
                        text = handle.read()
                    self.included_files.append(
                        (os.path.abspath(candidate),
                         hashlib.sha256(
                             text.encode("utf-8")).hexdigest()))
                    tokens = lexer.tokenize(text, candidate)
                    self._process_lines(_split_lines(tokens),
                                        os.path.dirname(candidate), out)
                finally:
                    self.include_depth -= 1
                return
        raise PreprocessorError(f"include file not found: {target}", loc)

    # -- macro expansion ----------------------------------------------------------

    def _expand(self, stream: deque[Token]) -> list[Token]:
        out: list[Token] = []
        while stream:
            token = stream.popleft()
            if token.kind != IDENT:
                out.append(token)
                continue
            name = token.text
            if name in token.hide_set or name not in self.macros:
                if name == "__LINE__":
                    replacement = Token(INT_CONST, (token.loc.line, False, 0),
                                        str(token.loc.line), token.loc)
                    out.append(replacement)
                elif name == "__FILE__":
                    out.append(Token(STRING,
                                     token.loc.filename.encode() + b"",
                                     token.loc.filename, token.loc))
                else:
                    out.append(token)
                continue
            macro = self.macros[name]
            if macro.is_function:
                if not stream or not stream[0].is_punct("("):
                    out.append(token)
                    continue
                args = self._collect_args(stream, macro, token.loc)
                body = self._substitute(macro, args, token)
            else:
                body = []
                for body_token in macro.body:
                    copy = body_token.copy()
                    copy.loc = token.loc
                    copy.hide_set = token.hide_set | {name}
                    body.append(copy)
            stream.extendleft(reversed(body))
        return out

    def _collect_args(self, stream: deque[Token], macro: Macro,
                      loc: SourceLocation) -> list[list[Token]]:
        stream.popleft()  # consume '('
        args: list[list[Token]] = [[]]
        depth = 0
        while True:
            if not stream:
                raise PreprocessorError(
                    f"unterminated call to macro {macro.name}", loc)
            token = stream.popleft()
            if token.is_punct("(") or token.is_punct("[") or token.is_punct("{"):
                depth += 1
            elif token.is_punct(")") or token.is_punct("]") or token.is_punct("}"):
                if depth == 0 and token.is_punct(")"):
                    break
                depth -= 1
            elif token.is_punct(",") and depth == 0:
                args.append([])
                continue
            args[-1].append(token)
        expected = len(macro.params or [])
        if len(args) == 1 and not args[0] and expected == 0:
            args = []
        if macro.is_varargs:
            if len(args) < expected:
                raise PreprocessorError(
                    f"macro {macro.name} expects at least {expected} "
                    f"arguments", loc)
        elif len(args) != expected:
            raise PreprocessorError(
                f"macro {macro.name} expects {expected} arguments, "
                f"got {len(args)}", loc)
        return args

    def _substitute(self, macro: Macro, args: list[list[Token]],
                    invocation: Token) -> list[Token]:
        params = macro.params or []
        expanded_args = [self._expand(deque(list(arg))) for arg in args]
        named = dict(zip(params, expanded_args))
        raw_named = dict(zip(params, args))
        if macro.is_varargs:
            extra = args[len(params):]
            va_tokens: list[Token] = []
            for i, arg in enumerate(self._expand_all(extra)):
                if i:
                    comma = Token(PUNCT, ",", ",", invocation.loc)
                    va_tokens.append(comma)
                va_tokens.extend(arg)
            named["__VA_ARGS__"] = va_tokens
            raw_named["__VA_ARGS__"] = va_tokens

        hide = invocation.hide_set | {macro.name}
        out: list[Token] = []
        body = macro.body
        i = 0
        while i < len(body):
            token = body[i]
            if token.is_punct("#") and i + 1 < len(body) \
                    and body[i + 1].kind == IDENT \
                    and body[i + 1].text in raw_named:
                # Stringize the *unexpanded* argument spelling.
                spelling = " ".join(
                    t.text for t in raw_named[body[i + 1].text])
                out.append(Token(STRING, spelling.encode("utf-8"),
                                 f'"{spelling}"', invocation.loc))
                i += 2
                continue
            if token.kind == IDENT and token.text in named:
                for arg_token in named[token.text]:
                    copy = arg_token.copy()
                    copy.loc = invocation.loc
                    out.append(copy)
                i += 1
                continue
            copy = token.copy()
            copy.loc = invocation.loc
            copy.hide_set = copy.hide_set | hide
            out.append(copy)
            i += 1
        return out

    def _expand_all(self, groups: list[list[Token]]) -> list[list[Token]]:
        return [self._expand(deque(list(g))) for g in groups]

    # -- #if expression evaluation ------------------------------------------------

    def _evaluate_condition(self, tokens: list[Token],
                            loc: SourceLocation) -> int:
        # Replace `defined NAME` / `defined(NAME)` before macro expansion.
        replaced: list[Token] = []
        i = 0
        while i < len(tokens):
            token = tokens[i]
            if token.kind == IDENT and token.text == "defined":
                if i + 1 < len(tokens) and tokens[i + 1].is_punct("("):
                    if i + 3 >= len(tokens) or not tokens[i + 3].is_punct(")"):
                        raise PreprocessorError("malformed defined()", loc)
                    name = tokens[i + 2].text
                    i += 4
                else:
                    name = tokens[i + 1].text
                    i += 2
                value = 1 if name in self.macros else 0
                replaced.append(Token(INT_CONST, (value, False, 0),
                                      str(value), loc))
                continue
            replaced.append(token)
            i += 1
        expanded = self._expand(deque(replaced))
        # Remaining identifiers evaluate to 0.
        return _CondParser(expanded, loc).parse()


class _CondParser:
    """Tiny recursive-descent evaluator for #if expressions."""

    def __init__(self, tokens: list[Token], loc: SourceLocation):
        self.tokens = tokens
        self.pos = 0
        self.loc = loc

    def parse(self) -> int:
        value = self._ternary()
        if self.pos != len(self.tokens):
            raise PreprocessorError("trailing tokens in #if expression",
                                    self.loc)
        return value

    def _peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.is_punct(text):
            self.pos += 1
            return True
        return False

    def _ternary(self) -> int:
        cond = self._binary(0)
        if self._accept("?"):
            if_true = self._ternary()
            if not self._accept(":"):
                raise PreprocessorError("expected ':'", self.loc)
            if_false = self._ternary()
            return if_true if cond else if_false
        return cond

    _LEVELS = [
        ("||",), ("&&",), ("|",), ("^",), ("&",), ("==", "!="),
        ("<", ">", "<=", ">="), ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
    ]

    def _binary(self, level: int) -> int:
        if level == len(self._LEVELS):
            return self._unary()
        lhs = self._binary(level + 1)
        while True:
            token = self._peek()
            if token is None or token.kind != PUNCT \
                    or token.text not in self._LEVELS[level]:
                return lhs
            self.pos += 1
            rhs = self._binary(level + 1)
            lhs = _apply(token.text, lhs, rhs, self.loc)

    def _unary(self) -> int:
        if self._accept("!"):
            return 0 if self._unary() else 1
        if self._accept("-"):
            return -self._unary()
        if self._accept("+"):
            return self._unary()
        if self._accept("~"):
            return ~self._unary()
        if self._accept("("):
            value = self._ternary()
            if not self._accept(")"):
                raise PreprocessorError("expected ')'", self.loc)
            return value
        token = self._peek()
        if token is None:
            raise PreprocessorError("truncated #if expression", self.loc)
        self.pos += 1
        if token.kind == INT_CONST:
            return token.value[0]
        if token.kind == lexer.CHAR_CONST:
            return token.value
        if token.kind == IDENT:
            return 0
        raise PreprocessorError(
            f"unexpected token {token.text!r} in #if", self.loc)


def _apply(op: str, lhs: int, rhs: int, loc: SourceLocation) -> int:
    if op in ("/", "%") and rhs == 0:
        raise PreprocessorError("division by zero in #if", loc)
    table = {
        "||": lambda a, b: 1 if a or b else 0,
        "&&": lambda a, b: 1 if a and b else 0,
        "|": lambda a, b: a | b, "^": lambda a, b: a ^ b,
        "&": lambda a, b: a & b,
        "==": lambda a, b: int(a == b), "!=": lambda a, b: int(a != b),
        "<": lambda a, b: int(a < b), ">": lambda a, b: int(a > b),
        "<=": lambda a, b: int(a <= b), ">=": lambda a, b: int(a >= b),
        "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
        "+": lambda a, b: a + b, "-": lambda a, b: a - b,
        "*": lambda a, b: a * b, "/": lambda a, b: int(a / b),
        "%": lambda a, b: a - int(a / b) * b,
    }
    return table[op](lhs, rhs)


def _split_lines(tokens: list[Token]) -> list[list[Token]]:
    """Group a token list into logical lines using start-of-line flags."""
    lines: list[list[Token]] = []
    current: list[Token] = []
    for token in tokens:
        if token.start_of_line and current:
            lines.append(current)
            current = []
        current.append(token)
    if current:
        lines.append(current)
    return lines
