"""C front end: lexer, preprocessor, parser, type checker, IR generator.

Produces clang ``-O0``-style IR (every local in an ``alloca``, no
optimization), preserving all source-level information the checks need.
"""

from .driver import compile_file, compile_source, default_include_dirs
from .errors import (CompileError, LexError, ParseError, PreprocessorError,
                     TypeCheckError)

__all__ = [
    "compile_file", "compile_source", "default_include_dirs",
    "CompileError", "LexError", "ParseError", "PreprocessorError",
    "TypeCheckError",
]
