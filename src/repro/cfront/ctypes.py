"""The C-level type system.

Distinct from the IR types: C types carry signedness and C-specific notions
(incomplete arrays, enums, qualifiers).  The IR generator lowers these to
:mod:`repro.ir.types`.  Sizes follow the LP64 / AMD64 model the paper
assumes (int is 32-bit, long and pointers are 64-bit).
"""

from __future__ import annotations


class CType:
    size: int
    align: int

    def __repr__(self) -> str:
        return f"<CType {self}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()

    @property
    def is_complete(self) -> bool:
        return True


class CVoid(CType):
    size = 0
    align = 1

    def __str__(self) -> str:
        return "void"

    @property
    def is_complete(self) -> bool:
        return False


# (size, rank) per integer kind; rank orders the usual arithmetic conversions.
_INT_KINDS = {
    "bool": (1, 0),
    "char": (1, 1),
    "short": (2, 2),
    "int": (4, 3),
    "long": (8, 4),
    "longlong": (8, 5),
}


class CInt(CType):
    __slots__ = ("kind", "signed", "size", "align", "rank")

    def __init__(self, kind: str, signed: bool = True):
        size, rank = _INT_KINDS[kind]
        self.kind = kind
        self.signed = signed
        self.size = size
        self.align = size
        self.rank = rank

    def _key(self):
        return (self.kind, self.signed)

    def __str__(self) -> str:
        if self.kind == "bool":
            return "_Bool"
        prefix = "" if self.signed else "unsigned "
        name = {"longlong": "long long"}.get(self.kind, self.kind)
        return prefix + name

    @property
    def bits(self) -> int:
        return 1 if self.kind == "bool" else self.size * 8

    @property
    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        if not self.signed:
            return (1 << self.bits) - 1
        return (1 << (self.bits - 1)) - 1


class CFloat(CType):
    __slots__ = ("bits", "size", "align")

    def __init__(self, bits: int):
        self.bits = bits
        self.size = bits // 8
        self.align = self.size

    def _key(self):
        return (self.bits,)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class CPointer(CType):
    __slots__ = ("target",)
    size = 8
    align = 8

    def __init__(self, target: CType):
        self.target = target

    def _key(self):
        return (self.target,)

    def __str__(self) -> str:
        return f"{self.target}*"


class CArray(CType):
    """An array; ``count is None`` means the type is incomplete
    (``int a[]``) until an initializer completes it."""

    __slots__ = ("elem", "count")

    def __init__(self, elem: CType, count: int | None):
        self.elem = elem
        self.count = count

    def _key(self):
        return (self.elem, self.count)

    @property
    def is_complete(self) -> bool:
        return self.count is not None and self.elem.is_complete

    @property
    def size(self) -> int:
        if self.count is None:
            raise TypeError("incomplete array has no size")
        return self.elem.size * self.count

    @property
    def align(self) -> int:
        return self.elem.align

    def __str__(self) -> str:
        count = "" if self.count is None else str(self.count)
        return f"{self.elem}[{count}]"


class CStructField:
    __slots__ = ("name", "type")

    def __init__(self, name: str, type: CType):
        self.name = name
        self.type = type


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


class CStruct(CType):
    """A struct or union; supports forward declaration + later completion."""

    _counter = 0

    def __init__(self, tag: str | None, is_union: bool = False):
        if tag is None:
            CStruct._counter += 1
            tag = f"anon.{CStruct._counter}"
        self.tag = tag
        self.is_union = is_union
        self.fields: list[CStructField] | None = None

    def _key(self):
        return (id(self),)

    @property
    def is_complete(self) -> bool:
        return self.fields is not None

    def complete(self, fields: list[CStructField]) -> None:
        if self.fields is not None:
            raise TypeError(f"struct {self.tag} redefined")
        self.fields = fields

    def field(self, name: str) -> CStructField:
        for f in self.fields or []:
            if f.name == name:
                return f
        raise KeyError(name)

    def field_index(self, name: str) -> int:
        for i, f in enumerate(self.fields or []):
            if f.name == name:
                return i
        raise KeyError(name)

    def field_offset(self, name: str) -> int:
        offset = 0
        for f in self.fields or []:
            if self.is_union:
                if f.name == name:
                    return 0
                continue
            offset = _round_up(offset, f.type.align)
            if f.name == name:
                return offset
            offset += f.type.size

        raise KeyError(name)

    @property
    def size(self) -> int:
        if self.fields is None:
            raise TypeError(f"struct {self.tag} is incomplete")
        if self.is_union:
            body = max((f.type.size for f in self.fields), default=0)
            return _round_up(body, self.align)
        offset = 0
        for f in self.fields:
            offset = _round_up(offset, f.type.align)
            offset += f.type.size
        return _round_up(offset, self.align)

    @property
    def align(self) -> int:
        if self.fields is None:
            raise TypeError(f"struct {self.tag} is incomplete")
        return max((f.type.align for f in self.fields), default=1)

    def __str__(self) -> str:
        keyword = "union" if self.is_union else "struct"
        return f"{keyword} {self.tag}"


class CEnum(CType):
    """Enums have int size; enumerator values live in the scope."""

    size = 4
    align = 4

    def __init__(self, tag: str | None):
        self.tag = tag or "anon"

    def _key(self):
        return (id(self),)

    def __str__(self) -> str:
        return f"enum {self.tag}"


class CFunc(CType):
    __slots__ = ("ret", "params", "is_varargs")

    def __init__(self, ret: CType, params: list[CType],
                 is_varargs: bool = False):
        self.ret = ret
        self.params = list(params)
        self.is_varargs = is_varargs

    def _key(self):
        return (self.ret, tuple(self.params), self.is_varargs)

    @property
    def size(self) -> int:
        raise TypeError("function type has no size")

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.is_varargs:
            params = f"{params}, ..." if params else "..."
        return f"{self.ret} (*)({params})"


# Singletons for the common types.
VOID = CVoid()
BOOL = CInt("bool", signed=False)
CHAR = CInt("char", signed=True)
UCHAR = CInt("char", signed=False)
SHORT = CInt("short")
USHORT = CInt("short", signed=False)
INT = CInt("int")
UINT = CInt("int", signed=False)
LONG = CInt("long")
ULONG = CInt("long", signed=False)
LONGLONG = CInt("longlong")
ULONGLONG = CInt("longlong", signed=False)
FLOAT = CFloat(32)
DOUBLE = CFloat(64)


def is_integer(t: CType) -> bool:
    return isinstance(t, (CInt, CEnum))


def is_arithmetic(t: CType) -> bool:
    return isinstance(t, (CInt, CEnum, CFloat))


def is_scalar(t: CType) -> bool:
    return is_arithmetic(t) or isinstance(t, CPointer)


def as_int(t: CType) -> CInt:
    """Normalize enums to int for arithmetic purposes."""
    if isinstance(t, CEnum):
        return INT
    assert isinstance(t, CInt)
    return t


def integer_promote(t: CType) -> CType:
    """C integer promotions: small ints become int."""
    it = as_int(t)
    if it.rank < INT.rank or it.kind == "bool":
        return INT
    return it


def usual_arithmetic_conversion(lhs: CType, rhs: CType) -> CType:
    """The usual arithmetic conversions (C11 6.3.1.8), LP64 flavour."""
    if isinstance(lhs, CFloat) or isinstance(rhs, CFloat):
        lbits = lhs.bits if isinstance(lhs, CFloat) else 0
        rbits = rhs.bits if isinstance(rhs, CFloat) else 0
        return DOUBLE if max(lbits, rbits) == 64 else FLOAT
    left = as_int(integer_promote(lhs))
    right = as_int(integer_promote(rhs))
    if left == right:
        return left
    if left.signed == right.signed:
        return left if left.rank >= right.rank else right
    signed, unsigned = (left, right) if left.signed else (right, left)
    if unsigned.rank >= signed.rank:
        return unsigned
    if signed.size > unsigned.size:
        return signed
    return CInt(signed.kind, signed=False)
