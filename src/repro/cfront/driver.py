"""Front-end driver: preprocess → parse → type-check → IR.

This is the analogue of running ``clang -O0 -emit-llvm`` in the paper's
pipeline (Figure 4).  The driver never optimizes; optimization pipelines
are applied explicitly by baselines via :mod:`repro.opt`.
"""

from __future__ import annotations

import os

from .. import ir
from . import irgen, parser, sema
from .preprocessor import Preprocessor


def default_include_dirs() -> list[str]:
    """The bundled libc headers, used like a system include path."""
    here = os.path.dirname(os.path.abspath(__file__))
    return [os.path.join(os.path.dirname(here), "libc", "include")]


def compile_source(text: str, filename: str = "<memory>",
                   include_dirs: list[str] | None = None,
                   defines: dict[str, str] | None = None,
                   module_name: str | None = None,
                   validate: bool = True,
                   include_log: list | None = None) -> ir.Module:
    """Compile one C translation unit to an IR module.

    ``include_log``, when given, receives (absolute path, sha256) for
    every ``#include`` the preprocessor resolved — the compilation
    cache's invalidation manifest."""
    from ..obs.spans import span
    if include_dirs is None:
        include_dirs = default_include_dirs()
    preprocessor = Preprocessor(include_dirs=include_dirs, defines=defines)
    with span("preprocess", file=filename):
        tokens = preprocessor.process_text(text, filename)
    if include_log is not None:
        include_log.extend(preprocessor.included_files)
    with span("parse", file=filename):
        unit = parser.parse(tokens)
    with span("typecheck", file=filename):
        sema.analyze(unit)
    with span("irgen", file=filename):
        module = irgen.generate(unit, module_name or filename)
    if validate:
        with span("validate", file=filename):
            ir.validate_module(module)
    return module


def compile_file(path: str, include_dirs: list[str] | None = None,
                 defines: dict[str, str] | None = None,
                 validate: bool = True) -> ir.Module:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return compile_source(text, filename=path, include_dirs=include_dirs,
                          defines=defines,
                          module_name=os.path.basename(path),
                          validate=validate)
